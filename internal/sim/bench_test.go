package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw scheduler throughput: one
// process sleeping repeatedly (event schedule + fire per iteration).
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	e.Go(func() {
		for i := 0; i < b.N; i++ {
			e.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcesses measures context-switch-heavy workloads:
// 1000 processes interleaving sleeps.
func BenchmarkManyProcesses(b *testing.B) {
	e := NewEngine()
	const procs = 1000
	rounds := b.N/procs + 1
	for p := 0; p < procs; p++ {
		d := time.Duration(p%13+1) * time.Microsecond
		e.Go(func() {
			for i := 0; i < rounds; i++ {
				e.Sleep(d)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSignalFanout measures waking many waiters at once.
func BenchmarkSignalFanout(b *testing.B) {
	e := NewEngine()
	const waiters = 256
	e.Go(func() {
		for i := 0; i < b.N; i++ {
			sig := e.NewSignal()
			wg := e.NewWaitGroup()
			for w := 0; w < waiters; w++ {
				wg.Go(sig.Wait)
			}
			e.Sleep(time.Microsecond)
			sig.Fire()
			wg.Wait()
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
