package sim

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var got time.Duration
	e.Go(func() {
		e.Sleep(3 * time.Second)
		got = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3*time.Second {
		t.Fatalf("Now after Sleep(3s) = %v, want 3s", got)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	e := NewEngine()
	var after time.Duration
	e.Go(func() {
		e.Sleep(0)
		e.Sleep(-time.Second)
		after = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after != 0 {
		t.Fatalf("clock moved to %v on zero/negative sleeps", after)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var mu sync.Mutex
	var order []int
	add := func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	}
	// Spawn in shuffled delay order; expect wake order by virtual time.
	delays := []time.Duration{5, 1, 4, 2, 3}
	for i, d := range delays {
		i, d := i, d
		e.Go(func() {
			e.Sleep(d * time.Millisecond)
			add(i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 4, 2, 0} // sorted by delay 1,2,3,4,5
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go(func() {
		e.After(time.Second, func() { order = append(order, "a") })
		e.After(time.Second, func() { order = append(order, "b") })
		e.Sleep(2 * time.Second) // keep the simulation alive past the events
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("same-time events order = %v, want [a b]", order)
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal()
	var mu sync.Mutex
	woken := 0
	for i := 0; i < 10; i++ {
		e.Go(func() {
			s.Wait()
			mu.Lock()
			woken++
			mu.Unlock()
		})
	}
	e.Go(func() {
		e.Sleep(time.Second)
		s.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 10 {
		t.Fatalf("woken = %d, want 10", woken)
	}
}

func TestSignalFireBeforeWait(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal()
	s.Fire()
	s.Fire() // double fire is a no-op
	done := false
	e.Go(func() {
		s.Wait() // must not block
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Wait on a fired signal blocked")
	}
	if !s.Fired() {
		t.Fatal("Fired() = false after Fire")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal()
	e.Go(func() { s.Wait() }) // nobody will fire
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
}

func TestDaemonDoesNotBlockRun(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal()
	e.GoDaemon(func() { s.Wait() }) // daemon blocked forever
	ran := false
	e.Go(func() {
		e.Sleep(time.Millisecond)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("regular process did not finish")
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Go(func() {
		tm := e.After(time.Second, func() { fired = true })
		if !tm.Cancel() {
			t.Error("Cancel on pending timer returned false")
		}
		if tm.Cancel() {
			t.Error("second Cancel returned true")
		}
		e.Sleep(2 * time.Second)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerReschedulingFromCallback(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	var tick func()
	n := 0
	tick = func() {
		times = append(times, e.Now())
		n++
		if n < 3 {
			e.After(time.Second, tick)
		}
	}
	e.Go(func() {
		e.After(time.Second, tick)
		e.Sleep(10 * time.Second)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", times, want)
		}
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	var mu sync.Mutex
	var ends []time.Duration
	e.Go(func() {
		e.Sleep(time.Second)
		for i := 1; i <= 3; i++ {
			d := time.Duration(i) * time.Second
			e.Go(func() {
				e.Sleep(d)
				mu.Lock()
				ends = append(ends, e.Now())
				mu.Unlock()
			})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	want := []time.Duration{2 * time.Second, 3 * time.Second, 4 * time.Second}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	reached := false
	e.Go(func() {
		e.Sleep(time.Second)
		e.Stop()
	})
	e.Go(func() {
		e.Sleep(time.Hour)
		reached = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("process past Stop deadline ran")
	}
	if e.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := NewEngine()
	e.Go(func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestManyProcessesStress(t *testing.T) {
	e := NewEngine()
	const n = 2000
	var mu sync.Mutex
	done := 0
	for i := 0; i < n; i++ {
		d := time.Duration(i%97+1) * time.Millisecond
		e.Go(func() {
			e.Sleep(d)
			e.Sleep(d)
			mu.Lock()
			done++
			mu.Unlock()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
}

func TestRealSyncBetweenRunnableProcs(t *testing.T) {
	// Processes may hand off through real channels as long as the
	// counterpart is runnable: the handoff is instantaneous in virtual
	// time.
	e := NewEngine()
	ch := make(chan int, 1)
	var got int
	e.Go(func() {
		e.Sleep(time.Second)
		ch <- 42 // buffered: never blocks across virtual time
	})
	e.Go(func() {
		e.Sleep(2 * time.Second) // strictly after the send
		got = <-ch
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}
