// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine multiplexes simulated processes (ordinary goroutines spawned
// with Engine.Go) over a virtual clock. Virtual time advances only when
// every live process is blocked on a simulation primitive (Sleep, Signal,
// or a timer); the engine then pops the earliest pending event and resumes
// the processes it wakes. Code running between blocking points is treated
// as instantaneous in virtual time, which matches the modelling assumption
// of this repository: network and disk transfers consume time, CPU does
// not.
//
// Processes may freely use real sync primitives (mutexes, channels) to
// coordinate with other *currently runnable* processes; such coordination
// is instantaneous in virtual time. Blocking across virtual time must go
// through the engine, otherwise Run reports a deadlock.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrDeadlock is returned by Run when live processes remain but no event
// can ever wake them.
var ErrDeadlock = errors.New("sim: deadlock: processes blocked with no pending events")

// Engine is a discrete-event scheduler. The zero value is not usable; use
// NewEngine.
type Engine struct {
	mu      sync.Mutex
	idle    *sync.Cond // signalled when runnable drops to zero
	now     time.Duration
	queue   eventQueue
	seq     uint64
	procs   int // live non-daemon processes
	daemons int // live daemon processes
	// runnable counts processes that are not blocked on an engine
	// primitive. Run advances the clock only when it reaches zero.
	runnable int
	running  bool
	stopped  bool
}

type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index, -1 once removed
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	e  *Engine
	ev *event
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	e.idle = sync.NewCond(&e.mu)
	return e
}

// Now returns the current virtual time (elapsed since engine start).
func (e *Engine) Now() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Go spawns fn as a simulated process. Run returns once all non-daemon
// processes have finished.
func (e *Engine) Go(fn func()) {
	e.spawn(fn, false)
}

// GoDaemon spawns fn as a daemon process: it does not keep Run alive.
// Daemons still blocked when the last regular process finishes are
// abandoned.
func (e *Engine) GoDaemon(fn func()) {
	e.spawn(fn, true)
}

func (e *Engine) spawn(fn func(), daemon bool) {
	e.mu.Lock()
	if daemon {
		e.daemons++
	} else {
		e.procs++
	}
	e.runnable++
	e.mu.Unlock()
	go func() {
		defer func() {
			e.mu.Lock()
			if daemon {
				e.daemons--
			} else {
				e.procs--
			}
			e.runnable--
			if e.runnable == 0 {
				e.idle.Signal()
			}
			e.mu.Unlock()
		}()
		fn()
	}()
}

// Sleep blocks the calling process for d of virtual time. Non-positive
// durations yield without advancing the clock.
func (e *Engine) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ch := make(chan struct{})
	e.mu.Lock()
	e.scheduleLocked(e.now+d, func() {
		e.mu.Lock()
		e.runnable++
		e.mu.Unlock()
		close(ch)
	})
	e.block()
	e.mu.Unlock()
	<-ch
}

// At schedules fn to run at absolute virtual time t (clamped to now). fn
// executes in the scheduler's context: it must not block, but it may call
// At, Cancel, and Signal.Fire. It must not call Sleep or Signal.Wait.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t < e.now {
		t = e.now
	}
	return &Timer{e: e, ev: e.scheduleLocked(t, fn)}
}

// After schedules fn to run d from now; see At.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	e.mu.Lock()
	defer e.mu.Unlock()
	at := e.now + d
	if d < 0 {
		at = e.now
	}
	return &Timer{e: e, ev: e.scheduleLocked(at, fn)}
}

// Cancel removes the timer if it has not fired. It reports whether the
// timer was pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil {
		return false
	}
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	if t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.e.queue, t.ev.index)
	t.ev.index = -1
	return true
}

// When returns the virtual time the timer is scheduled for.
func (t *Timer) When() time.Duration { return t.ev.at }

func (e *Engine) scheduleLocked(at time.Duration, fn func()) *event {
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// block marks the calling process as blocked; callers hold e.mu.
func (e *Engine) block() {
	e.runnable--
	if e.runnable == 0 {
		e.idle.Signal()
	}
}

// Run drives the simulation until every non-daemon process has finished,
// a deadlock is detected, or Stop is called. It must be invoked from the
// host (non-simulated) goroutine, exactly once.
func (e *Engine) Run() error {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return errors.New("sim: Run called twice")
	}
	e.running = true
	for {
		for e.runnable > 0 {
			e.idle.Wait()
		}
		if e.stopped || e.procs == 0 {
			e.mu.Unlock()
			return nil
		}
		if e.queue.Len() == 0 {
			e.mu.Unlock()
			return fmt.Errorf("%w (%d processes)", ErrDeadlock, e.procs)
		}
		ev := heap.Pop(&e.queue).(*event)
		ev.index = -1
		if ev.at > e.now {
			e.now = ev.at
		}
		// Run the callback without the lock so it can use the public
		// API (At, Fire, ...). The scheduler owns the clock meanwhile:
		// runnable may rise above zero while fn wakes processes, and
		// the top of the loop waits for quiescence again.
		e.mu.Unlock()
		ev.fn()
		e.mu.Lock()
	}
}

// Stop makes Run return after the current event completes. Safe to call
// from simulated processes.
func (e *Engine) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.idle.Signal()
	e.mu.Unlock()
}

// Signal is a one-shot wake-up that simulated processes can Wait on.
// Fire may be called before, during, or after Wait, from processes or
// timer callbacks. Multiple waiters are all released by one Fire.
type Signal struct {
	e       *Engine
	fired   bool // guarded by e.mu
	waiters int  // guarded by e.mu
	ch      chan struct{}
}

// NewSignal returns an unfired signal bound to the engine.
func (e *Engine) NewSignal() *Signal {
	return &Signal{e: e, ch: make(chan struct{})}
}

// Wait blocks the calling process until the signal fires. Returns
// immediately if it already fired.
func (s *Signal) Wait() {
	s.e.mu.Lock()
	if s.fired {
		s.e.mu.Unlock()
		return
	}
	s.waiters++
	s.e.block()
	s.e.mu.Unlock()
	<-s.ch
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	return s.fired
}

// Fire releases all current and future waiters. Firing twice is a no-op.
func (s *Signal) Fire() {
	s.e.mu.Lock()
	if s.fired {
		s.e.mu.Unlock()
		return
	}
	s.fired = true
	close(s.ch)
	s.e.runnable += s.waiters
	s.waiters = 0
	s.e.mu.Unlock()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
