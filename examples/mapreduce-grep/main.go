// mapreduce-grep runs the paper's Distributed Grep application with
// real data on a simulated 40-node cluster backed by BSFS: generate a
// corpus with Random Text Writer, grep it for a word, and print the
// matches plus the virtual-time job costs — the §IV.C experiment in
// miniature, with actual bytes flowing through every layer.
package main

import (
	"fmt"
	"io"
	"log"

	"repro/internal/apps"
	"repro/internal/bsfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func main() {
	const nodes = 40
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.Grid5000(nodes))
	env := cluster.NewSim(net)

	providers := make([]cluster.NodeID, nodes-1)
	for i := range providers {
		providers[i] = cluster.NodeID(i + 1)
	}
	dep, err := core.NewDeployment(env, core.Options{
		PageSize:      64 << 10,
		ProviderNodes: providers,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := bsfs.NewService(dep, bsfs.Config{BlockSize: 1 << 20})

	eng.Go(func() {
		mr, err := mapreduce.NewCluster(env, mapreduce.Config{
			JobTrackerNode: 0,
			WorkerNodes:    providers,
			NewFS:          func(n cluster.NodeID) fsapi.FileSystem { return svc.NewFS(n) },
		})
		if err != nil {
			log.Fatal(err)
		}

		// Phase 1: generate ~4 MB of random text across 8 files.
		gen := apps.RandomTextWriter("/corpus", 8, 512<<10, false)
		genRes, err := mr.Submit(gen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d files, %d bytes, in %v of cluster time\n",
			genRes.Counters.MapTasks, genRes.Counters.OutputBytes, genRes.Duration)

		// Phase 2: grep for a vocabulary word.
		job := apps.DistributedGrep([]string{"/corpus"}, "/matches", "glaucopis", false)
		res, err := mr.Submit(job)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("grep: %d maps (%d data-local, %d rack-local, %d remote), completed in %v\n",
			res.Counters.MapTasks, res.Counters.DataLocal, res.Counters.RackLocal,
			res.Counters.Remote, res.Duration)
		fmt.Printf("scanned %d bytes, matched %d bytes of lines\n",
			res.Counters.InputBytes, res.Counters.OutputBytes)

		// Show a few matches.
		fs := svc.NewFS(0)
		r, err := fs.Open("/matches/part-r-00000")
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		out, err := io.ReadAll(r)
		if err != nil {
			log.Fatal(err)
		}
		lines := 0
		for i := 0; i < len(out) && lines < 3; i++ {
			if out[i] == '\n' {
				lines++
			}
		}
		fmt.Printf("first matches (offset\\tline):\n%s", out[:firstN(out, 3)])
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
}

// firstN returns the byte length of the first n lines.
func firstN(b []byte, n int) int {
	for i := range b {
		if b[i] == '\n' {
			n--
			if n == 0 {
				return i + 1
			}
		}
	}
	return len(b)
}
