// versioned-workflow demonstrates the paper's second future-work
// feature (§V): MapReduce workflows running concurrently on different
// snapshots of the same dataset. A producer keeps appending batches to
// one file; each batch publishes a new snapshot, and analysis jobs run
// against frozen versions while ingestion continues — no copies, no
// coordination.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/bsfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func main() {
	const nodes = 30
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.Grid5000(nodes))
	env := cluster.NewSim(net)

	providers := make([]cluster.NodeID, nodes-1)
	for i := range providers {
		providers[i] = cluster.NodeID(i + 1)
	}
	dep, err := core.NewDeployment(env, core.Options{
		PageSize:      16 << 10,
		ProviderNodes: providers,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := bsfs.NewService(dep, bsfs.Config{BlockSize: 256 << 10})

	eng.Go(func() {
		mr, err := mapreduce.NewCluster(env, mapreduce.Config{
			JobTrackerNode: 0,
			WorkerNodes:    providers,
			NewFS:          func(n cluster.NodeID) fsapi.FileSystem { return svc.NewFS(n) },
		})
		if err != nil {
			log.Fatal(err)
		}
		fs := svc.NewFS(0)

		// Ingest three batches; after each, remember the snapshot.
		w, err := fs.Create("/stream/events")
		if err != nil {
			log.Fatal(err)
		}
		w.Close()
		var snapshots []core.Version
		for batch := 0; batch < 3; batch++ {
			aw, err := fs.Append("/stream/events")
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				fmt.Fprintf(aw, "batch-%d event-%04d pelf\n", batch, i)
			}
			if err := aw.Close(); err != nil {
				log.Fatal(err)
			}
			vs, err := fs.Versions("/stream/events")
			if err != nil {
				log.Fatal(err)
			}
			snapshots = append(snapshots, vs[len(vs)-1])
			fi, _ := fs.Stat("/stream/events")
			fmt.Printf("ingested batch %d -> snapshot v%d (%d bytes)\n", batch, snapshots[batch], fi.Size)
		}

		// Run one grep per snapshot, all concurrently, while a fourth
		// batch is being ingested.
		wg := env.NewWaitGroup()
		wg.Go(func() {
			aw, err := fs.Append("/stream/events")
			if err != nil {
				return
			}
			for i := 0; i < 2000; i++ {
				fmt.Fprintf(aw, "batch-3 event-%04d pelf\n", i)
			}
			aw.Close()
		})
		type outcome struct {
			snap  core.Version
			bytes int64
		}
		results := make([]outcome, len(snapshots))
		for i, snap := range snapshots {
			wg.Go(func() {
				job := apps.DistributedGrep([]string{"/stream/events"}, fmt.Sprintf("/out/v%d", snap), "batch-", false)
				job.Name = fmt.Sprintf("grep@v%d", snap)
				job.OpenInput = func(f fsapi.FileSystem, path string, opts ...fsapi.OpenOption) (fsapi.Reader, error) {
					return f.OpenAt(path, append(opts, fsapi.AtVersion(uint64(snap)))...)
				}
				res, err := mr.Submit(job)
				if err != nil {
					log.Fatal(err)
				}
				results[i] = outcome{snap: snap, bytes: res.Counters.InputBytes}
			})
		}
		wg.Wait()

		fmt.Println("concurrent jobs, each pinned to its snapshot:")
		for _, r := range results {
			fmt.Printf("  grep@v%d scanned %d bytes\n", r.snap, r.bytes)
		}
		// Each later snapshot scanned strictly more data; none saw the
		// in-flight fourth batch beyond its frozen version.
		for i := 1; i < len(results); i++ {
			if results[i].bytes <= results[i-1].bytes {
				log.Fatalf("snapshot isolation violated: v%d scanned %d <= v%d's %d",
					results[i].snap, results[i].bytes, results[i-1].snap, results[i-1].bytes)
			}
		}
		fi, _ := fs.Stat("/stream/events")
		fmt.Printf("meanwhile the live file kept growing: now %d bytes\n", fi.Size)
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
}
