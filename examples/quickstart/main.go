// Quickstart: the BlobSeer core API in-process — create a blob, write,
// append, read back, and inspect versions. This is the ten-line tour of
// what the storage layer offers MapReduce (§III.A): versioned,
// concurrent, fine-grained access to huge sequences of bytes.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	// A local (instantaneous) environment with 4 nodes: node 0 runs
	// the version manager, nodes 1-3 run page providers.
	env := cluster.NewLocal(4, 0)
	dep, err := core.NewDeployment(env, core.Options{
		PageSize:      4 << 10, // 4 KiB pages
		ProviderNodes: []cluster.NodeID{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	client := dep.NewClient(0)
	blob, err := client.Create(0)
	if err != nil {
		log.Fatal(err)
	}

	// Every write publishes a new immutable snapshot.
	v1, err := client.Write(blob, 0, []byte("MapReduce applications process huge files.\n"))
	if err != nil {
		log.Fatal(err)
	}
	v2, _, err := client.Append(blob, []byte("BlobSeer versions every write.\n"))
	if err != nil {
		log.Fatal(err)
	}
	// Overwrite part of the first line — old snapshots stay intact.
	v3, err := client.Write(blob, 0, []byte("BLOBSEER__"))
	if err != nil {
		log.Fatal(err)
	}

	show := func(v core.Version) {
		_, size, _ := client.Latest(blob)
		if v != core.LatestVersion {
			rec, err := dep.VM.GetVersion(0, blob, v)
			if err != nil {
				log.Fatal(err)
			}
			size = rec.SizeAfter
		}
		buf := make([]byte, size)
		n, err := client.Read(blob, v, 0, buf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- version %d (%d bytes) ---\n%s", v, n, buf[:n])
	}

	fmt.Println("quickstart: one blob, three snapshots")
	show(v1)
	show(v2)
	show(v3)

	// The primitive BSFS exposes to the Hadoop scheduler: where does
	// each page live?
	locs, err := client.PageLocations(blob, core.LatestVersion, 0, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- page distribution (the scheduler's locality input) ---")
	for _, l := range locs {
		fmt.Printf("page %d -> providers %v (written by version %d)\n", l.Page, l.Providers, l.Version)
	}

	// Branching: an O(1) copy-on-write clone of the v2 snapshot that
	// diverges independently.
	branch, err := client.Clone(blob, v2)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := client.Append(branch, []byte("branch-only data\n")); err != nil {
		log.Fatal(err)
	}
	_, branchSize, _ := client.Latest(branch)
	_, mainSize, _ := client.Latest(blob)
	fmt.Printf("--- branching ---\ncloned v%d into blob %d: branch %dB, original %dB (shared pages, no copies)\n",
		v2, branch, branchSize, mainSize)
}
