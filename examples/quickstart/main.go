// Quickstart: the BlobSeer core API in-process — open a blob handle,
// write, append, read back, and inspect versions. This is the ten-line
// tour of what the storage layer offers MapReduce (§III.A): versioned,
// concurrent, fine-grained access to huge sequences of bytes, behind a
// handle-plus-options surface (Blob.ReadAt/WriteAt/Append with
// AtVersion, Synthetic, WithCtx).
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	// A local (instantaneous) environment with 4 nodes: node 0 runs
	// the version manager, nodes 1-3 run page providers.
	env := cluster.NewLocal(4, 0)
	dep, err := core.NewDeployment(env, core.Options{
		PageSize:      4 << 10, // 4 KiB pages
		ProviderNodes: []cluster.NodeID{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	client := dep.NewClient(0)
	blob, err := client.CreateBlob(0)
	if err != nil {
		log.Fatal(err)
	}

	// Every write publishes a new immutable snapshot.
	v1, err := blob.WriteAt([]byte("MapReduce applications process huge files.\n"), 0)
	if err != nil {
		log.Fatal(err)
	}
	vs, _, err := blob.Append(core.Blocks([]byte("BlobSeer versions every write.\n")))
	if err != nil {
		log.Fatal(err)
	}
	v2 := vs[0]
	// Overwrite part of the first line — old snapshots stay intact.
	v3, err := blob.WriteAt([]byte("BLOBSEER__"), 0)
	if err != nil {
		log.Fatal(err)
	}

	show := func(v core.Version) {
		_, size, _ := blob.Latest()
		if v != core.LatestVersion {
			rec, err := dep.VM.GetVersion(0, blob.ID(), v)
			if err != nil {
				log.Fatal(err)
			}
			size = rec.SizeAfter
		}
		buf := make([]byte, size)
		n, err := blob.ReadAt(buf, 0, core.AtVersion(v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- version %d (%d bytes) ---\n%s", v, n, buf[:n])
	}

	fmt.Println("quickstart: one blob, three snapshots")
	show(v1)
	show(v2)
	show(v3)

	// The primitive BSFS exposes to the Hadoop scheduler: where does
	// each page live?
	locs, err := blob.Locations(0, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- page distribution (the scheduler's locality input) ---")
	for _, l := range locs {
		fmt.Printf("page %d -> providers %v (written by version %d)\n", l.Page, l.Providers, l.Version)
	}

	// Branching: an O(1) copy-on-write snapshot of v2 that diverges
	// independently.
	branch, err := blob.Snapshot(core.AtVersion(v2))
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := branch.Append(core.Blocks([]byte("branch-only data\n"))); err != nil {
		log.Fatal(err)
	}
	_, branchSize, _ := branch.Latest()
	_, mainSize, _ := blob.Latest()
	fmt.Printf("--- branching ---\ncloned v%d into blob %d: branch %dB, original %dB (shared pages, no copies)\n",
		v2, branch.ID(), branchSize, mainSize)

	// Op-scoped cancellation: a context canceled before the read makes
	// the operation fail promptly with a typed error.
	ctx, cancel := cluster.WithCancel(env)
	cancel()
	if _, err := blob.ReadAt(make([]byte, 8), 0, core.WithCtx(ctx)); err != nil {
		fmt.Printf("--- cancellation ---\ncanceled read: %v\n", err)
	}
}
