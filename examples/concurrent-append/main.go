// concurrent-append demonstrates the paper's first future-work feature
// (§V): many clients appending to the same file concurrently — the
// pattern that would let all reducers of a MapReduce job write one
// output file. BlobSeer's version manager serializes snapshot
// publication while the data transfers proceed in parallel, so the
// appends interleave without locks and without loss. HDFS rejects the
// same workload outright.
package main

import (
	"fmt"
	"log"

	"repro/internal/bsfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func main() {
	const (
		nodes     = 30
		appenders = 12
		lines     = 40
	)
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.Grid5000(nodes))
	env := cluster.NewSim(net)

	providers := make([]cluster.NodeID, nodes-1)
	for i := range providers {
		providers[i] = cluster.NodeID(i + 1)
	}
	dep, err := core.NewDeployment(env, core.Options{
		PageSize:      4 << 10,
		ProviderNodes: providers,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := bsfs.NewService(dep, bsfs.Config{BlockSize: 64 << 10})

	eng.Go(func() {
		// Create the shared file.
		w, err := svc.NewFS(0).Create("/shared/log")
		if err != nil {
			log.Fatal(err)
		}
		w.Close()

		// Concurrent appenders, one per node.
		wg := env.NewWaitGroup()
		for a := 0; a < appenders; a++ {
			node := cluster.NodeID(a + 1)
			wg.Go(func() {
				fs := svc.NewFS(node)
				aw, err := fs.Append("/shared/log")
				if err != nil {
					log.Fatal(err)
				}
				for l := 0; l < lines; l++ {
					fmt.Fprintf(aw, "appender-%02d line-%02d\n", a, l)
				}
				if err := aw.Close(); err != nil {
					log.Fatal(err)
				}
			})
		}
		wg.Wait()

		fi, err := svc.NewFS(0).Stat("/shared/log")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d appenders x %d lines -> one file of %d bytes in %v of cluster time\n",
			appenders, lines, fi.Size, env.Now())

		// Verify nothing was lost: count each appender's lines.
		r, err := svc.NewFS(0).Open("/shared/log")
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		buf := make([]byte, fi.Size)
		if _, err := r.ReadAt(buf, 0); err != nil {
			log.Fatal(err)
		}
		counts := make([]int, appenders)
		for i := 0; i+11 < len(buf); i++ {
			if string(buf[i:i+9]) == "appender-" {
				var id int
				fmt.Sscanf(string(buf[i+9:i+11]), "%d", &id)
				counts[id]++
			}
		}
		for a, c := range counts {
			if c != lines {
				log.Fatalf("appender %d lost lines: %d of %d", a, c, lines)
			}
		}
		fmt.Println("all appended records intact; snapshots published in a total order")

		// The contrast: HDFS refuses the same pattern (§II.C).
		hd, err := hdfs.NewDeployment(env, hdfs.Config{DataNodes: providers})
		if err != nil {
			log.Fatal(err)
		}
		hw, err := hd.NewFS(1).Create("/shared/log")
		if err != nil {
			log.Fatal(err)
		}
		hw.Close()
		if _, err := hd.NewFS(2).Append("/shared/log"); err != nil {
			fmt.Printf("hdfs, for comparison: %v (%v)\n", err, fsapi.ErrNotSupported)
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
}
