// Command bsfsd hosts a BSFS deployment (BlobSeer version-manager
// tier, provider manager, providers, metadata DHT, and the BSFS
// namespace manager) and serves the file system to remote clients over
// TCP. Pair it with cmd/blobctl.
//
// With -store, each provider's RAM page cache sits over a persistent
// backend selected by spec — "disk:/var/lib/bsfsd" persists pages to
// per-provider write-ahead logs that survive restarts (a restarted
// bsfsd recovers the full page index from the logs and reports how many
// pages came back); "mem:" and "null:" are testing backends. -data DIR
// is the historical alias for -store disk:DIR. With -vm-shards N,
// version management is partitioned per blob across N independent
// shards (blobctl's `shards` command shows the tier and any file's
// owner). The provider fleet is dynamic: blobctl's `join`, `drain` and
// `leave` commands grow and shrink it at runtime (-spares reserves node
// headroom for joins), and `providers` shows each member's health,
// backend and store occupancy.
//
// Usage:
//
//	bsfsd -listen :7700 -providers 4 -page 262144 -store disk:/var/lib/bsfsd
//	bsfsd -listen :7700 -providers 8 -vm-shards 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/bsfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rpcnet"
	"repro/internal/store"
)

func main() {
	var (
		listen      = flag.String("listen", ":7700", "TCP listen address")
		providers   = flag.Int("providers", 4, "number of page providers")
		pageSize    = flag.Int64("page", 256<<10, "blob page size in bytes")
		blockSize   = flag.Int64("block", 64<<20, "BSFS block size in bytes")
		replicas    = flag.Int("replicas", 1, "page replication factor")
		storeSpec   = flag.String("store", "", "provider backend spec: disk:PATH, mem:, null: (empty = in-memory)")
		dataDir     = flag.String("data", "", "alias for -store disk:DIR (historical)")
		inflight    = flag.Int("inflight", 0, "writer commit-pipeline depth in blocks (0 = default, negative = synchronous)")
		serialPub   = flag.Bool("serial-publish", false, "disable version-manager group commit and batched publishes (debug baseline)")
		vmShards    = flag.Int("vm-shards", 1, "version-manager shard count (blobs partition across shards by id)")
		metaShards  = flag.Int("meta-cache-shards", 0, "client metadata-cache lock-stripe count (0 = default 16, 1 = historical single-mutex cache)")
		spares      = flag.Int("spares", 32, "node headroom reserved for providers joining at runtime")
		sweep       = flag.Duration("placement-interval", 10*time.Second, "background placement sweep interval: repair + rebalance (0 disables)")
		heartbeat   = flag.Duration("heartbeat", 2*time.Second, "provider health-check interval (0 = probe only during sweeps)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant admitted ops/sec; over-rate tenants are rejected with a retry-after hint (0 disables admission)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant token-bucket depth (0 = max(rate, 1))")
	)
	flag.Parse()
	if *vmShards < 1 {
		*vmShards = 1
	}
	if *spares < 0 {
		*spares = 0
	}
	if err := store.Valid(*storeSpec); err != nil {
		log.Fatalf("bsfsd: -store: %v", err)
	}

	// Node 0 hosts the masters (shard 0, placement manager, namespace),
	// nodes 1..providers the page providers, any extra shards get their
	// own nodes after the providers, and the spare range past that is
	// headroom for providers joining at runtime.
	env := cluster.NewLocal(*providers+*vmShards+*spares, 0)
	nodes := make([]cluster.NodeID, *providers)
	for i := range nodes {
		nodes[i] = cluster.NodeID(i + 1)
	}
	vmNodes := make([]cluster.NodeID, *vmShards)
	for i := 1; i < *vmShards; i++ {
		vmNodes[i] = cluster.NodeID(*providers + i)
	}
	dep, err := core.NewDeployment(env, core.Options{
		PageSize:          *pageSize,
		Replication:       *replicas,
		VMNodes:           vmNodes,
		ProviderNodes:     nodes,
		Provider:          core.ProviderConfig{Store: *storeSpec, Dir: *dataDir},
		SerialPublish:     *serialPub,
		MetaCacheShards:   *metaShards,
		PlacementInterval: *sweep,
		HeartbeatInterval: *heartbeat,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
	})
	if err != nil {
		log.Fatalf("bsfsd: %v", err)
	}
	defer dep.Close()
	svc := bsfs.NewService(dep, bsfs.Config{BlockSize: *blockSize, MaxInFlightBlocks: *inflight})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("bsfsd: %v", err)
	}
	fmt.Printf("bsfsd: serving BSFS on %s (%d providers, page %d, block %d, replicas %d, vm shards %d)\n",
		l.Addr(), *providers, *pageSize, *blockSize, *replicas, *vmShards)
	// Restart recovery report: with a durable backend, a reopened
	// deployment replays each provider's page log at startup.
	var recovered int
	for _, p := range dep.ProviderList() {
		recovered += p.Store().Recovered()
	}
	if spec := dep.ProviderList()[0].Store().BackendSpec(); spec != "" {
		fmt.Printf("bsfsd: provider backends %s: %d pages recovered from previous runs\n", spec, recovered)
	}
	if err := rpcnet.Serve(l, rpcnet.NewService(svc.NewFS(0))); err != nil {
		log.Fatalf("bsfsd: %v", err)
	}
}
