// Command bsfsd hosts a BSFS deployment (BlobSeer version manager,
// provider manager, providers, metadata DHT, and the BSFS namespace
// manager) and serves the file system to remote clients over TCP.
// Pair it with cmd/blobctl.
//
// With -data, provider pages are persisted to write-ahead logs under
// the given directory and survive restarts.
//
// Usage:
//
//	bsfsd -listen :7700 -providers 4 -page 262144 -data /var/lib/bsfsd
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"repro/internal/bsfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rpcnet"
)

func main() {
	var (
		listen    = flag.String("listen", ":7700", "TCP listen address")
		providers = flag.Int("providers", 4, "number of page providers")
		pageSize  = flag.Int64("page", 256<<10, "blob page size in bytes")
		blockSize = flag.Int64("block", 64<<20, "BSFS block size in bytes")
		replicas  = flag.Int("replicas", 1, "page replication factor")
		dataDir   = flag.String("data", "", "directory for durable page logs (empty = in-memory)")
		inflight  = flag.Int("inflight", 0, "writer commit-pipeline depth in blocks (0 = default, negative = synchronous)")
		serialPub = flag.Bool("serial-publish", false, "disable version-manager group commit and batched publishes (debug baseline)")
	)
	flag.Parse()

	env := cluster.NewLocal(*providers+1, 0)
	nodes := make([]cluster.NodeID, *providers)
	for i := range nodes {
		nodes[i] = cluster.NodeID(i + 1)
	}
	dep, err := core.NewDeployment(env, core.Options{
		PageSize:      *pageSize,
		Replication:   *replicas,
		ProviderNodes: nodes,
		Provider:      core.ProviderConfig{Dir: *dataDir},
		SerialPublish: *serialPub,
	})
	if err != nil {
		log.Fatalf("bsfsd: %v", err)
	}
	defer dep.Close()
	svc := bsfs.NewService(dep, bsfs.Config{BlockSize: *blockSize, MaxInFlightBlocks: *inflight})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("bsfsd: %v", err)
	}
	fmt.Printf("bsfsd: serving BSFS on %s (%d providers, page %d, block %d, replicas %d)\n",
		l.Addr(), *providers, *pageSize, *blockSize, *replicas)
	if err := rpcnet.Serve(l, rpcnet.NewService(svc.NewFS(0))); err != nil {
		log.Fatalf("bsfsd: %v", err)
	}
}
