// Command mr-bench regenerates the paper's application benchmarks
// (§IV.C): job completion time of Random Text Writer (E4) and
// Distributed Grep (E5) through the MapReduce framework, with BSFS and
// HDFS as storage back-ends, plus the versioned-workflow extension
// (X4).
//
// Usage:
//
//	mr-bench                       # E4 + E5 at paper scale
//	mr-bench -app rtw -maps 250    # one application
//	mr-bench -app x4               # snapshot workflow extension
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		app     = flag.String("app", "all", "application: rtw, grep, x4, or 'all'")
		maps    = flag.Int("maps", 250, "map tasks (paper: one per client node)")
		sizeMB  = flag.Int64("size", 1024, "MB per map (paper: 1024)")
		nodes   = flag.Int("nodes", 270, "cluster size")
		cacheMB = flag.Int64("cache", 512, "storage-node RAM cache in MB")
	)
	flag.Parse()

	base := bench.AppOpts{
		Maps:        *maps,
		BytesPerMap: *sizeMB * bench.MB,
		Spec:        bench.ClusterSpec{Nodes: *nodes},
	}

	runBoth := func(name string, run func(bench.AppOpts) (bench.AppResult, error)) []bench.AppResult {
		var out []bench.AppResult
		for _, kind := range []string{"bsfs", "hdfs"} {
			opts := base
			opts.Storage = bench.StorageOpts{Kind: kind, MemCapacity: *cacheMB * bench.MB}
			r, err := run(opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mr-bench: %s on %s: %v\n", name, kind, err)
				os.Exit(1)
			}
			out = append(out, r)
		}
		return out
	}

	switch *app {
	case "rtw":
		bench.WriteAppTable(os.Stdout, "E4: Random Text Writer (job completion time)", runBoth("rtw", bench.RunRandomTextWriter))
	case "grep":
		bench.WriteAppTable(os.Stdout, "E5: Distributed Grep (job completion time)", runBoth("grep", bench.RunDistributedGrep))
	case "x4":
		opts := base
		opts.Storage = bench.StorageOpts{Kind: "bsfs", MemCapacity: *cacheMB * bench.MB}
		results, err := bench.RunSnapshotWorkflow(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mr-bench: x4: %v\n", err)
			os.Exit(1)
		}
		bench.WriteAppTable(os.Stdout, "X4: concurrent MapReduce jobs on different snapshots (bsfs)", results)
	case "all":
		bench.WriteAppTable(os.Stdout, "E4: Random Text Writer (job completion time)", runBoth("rtw", bench.RunRandomTextWriter))
		bench.WriteAppTable(os.Stdout, "E5: Distributed Grep (job completion time)", runBoth("grep", bench.RunDistributedGrep))
		opts := base
		opts.Storage = bench.StorageOpts{Kind: "bsfs", MemCapacity: *cacheMB * bench.MB}
		if results, err := bench.RunSnapshotWorkflow(opts); err == nil {
			bench.WriteAppTable(os.Stdout, "X4: concurrent MapReduce jobs on different snapshots (bsfs)", results)
		} else {
			fmt.Fprintf(os.Stderr, "mr-bench: x4: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "mr-bench: unknown app %q\n", *app)
		os.Exit(2)
	}
}
