// Command blobctl is the remote client for a bsfsd server: put, get,
// append, list, stat, rename, delete, and snapshot inspection.
//
// Usage:
//
//	blobctl -addr host:7700 put /data/input < local.txt
//	blobctl get /data/input > out.txt
//	blobctl get -version 2 /data/input       # read an old snapshot
//	blobctl append /data/input < more.txt
//	blobctl ls /data
//	blobctl versions /data/input
//	blobctl stat /data/input
//	blobctl shards                           # version-manager tier topology
//	blobctl shards /data/input               # which shard owns this file
//	blobctl providers                        # provider fleet: health + occupancy
//	blobctl tenants                          # per-tenant admission counters
//	blobctl -tenant team-a put /data/input < local.txt
//	blobctl join                             # grow the fleet (auto-picks a node)
//	blobctl drain 3                          # migrate node 3's pages away
//	blobctl leave 3                          # remove node 3 from the fleet
//	blobctl mv /data/input /data/renamed
//	blobctl rm /data/renamed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/rpcnet"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: blobctl [-addr host:port] <command> [args]
commands:
  put <path>            write stdin to a new file
  append <path>         append stdin to an existing file
  get [-version N] <path>  write file (or snapshot) to stdout
  ls <dir>              list a directory
  stat <path>           show file metadata
  versions <path>       list a file's snapshots
  shards [<path>]       show the version-manager tier (and a file's owning shard)
  providers             show the provider fleet: health, occupancy, backend, epoch
  tenants               show per-tenant admission counters (admitted/rejected/inflight)
  join [<node>]         add a provider (no node = auto-allocate)
  drain <node>          migrate a provider's pages away (keeps serving reads)
  leave <node>          remove a provider from the fleet
  mkdir <dir>           create a directory
  mv <old> <new>        rename
  rm <path>             delete`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "bsfsd address")
	tenant := flag.String("tenant", "", "admission tenant to attribute data operations to (empty = unlimited)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	c, err := rpcnet.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	c.Tenant = *tenant

	cmd, args := args[0], args[1:]
	switch cmd {
	case "put", "append":
		if len(args) != 1 {
			usage()
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if cmd == "put" {
			err = c.Put(args[0], data)
		} else {
			err = c.Append(args[0], data)
		}
		if err != nil {
			fatal(err)
		}
	case "get":
		fs := flag.NewFlagSet("get", flag.ExitOnError)
		version := fs.Uint64("version", 0, "snapshot version (0 = latest)")
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		data, err := c.Get(fs.Arg(0), *version)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
	case "ls":
		if len(args) != 1 {
			usage()
		}
		entries, err := c.List(args[0])
		if err != nil {
			fatal(err)
		}
		for _, e := range entries {
			kind := "file"
			if e.IsDir {
				kind = "dir "
			}
			fmt.Printf("%s %12d  %s\n", kind, e.Size, e.Path)
		}
	case "stat":
		if len(args) != 1 {
			usage()
		}
		st, err := c.Stat(args[0])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("path: %s\nsize: %d\ndir:  %v\n", st.Path, st.Size, st.IsDir)
	case "versions":
		if len(args) != 1 {
			usage()
		}
		vs, err := c.Versions(args[0])
		if err != nil {
			fatal(err)
		}
		for _, v := range vs {
			fmt.Println(v)
		}
	case "shards":
		if len(args) > 1 {
			usage()
		}
		path := ""
		if len(args) == 1 {
			path = args[0]
		}
		sr, err := c.Shards(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("shards: %d\nnodes:  %v\n", sr.Count, sr.Nodes)
		if path != "" {
			fmt.Printf("file:   %s\nblob:   %d\nshard:  %d\n", path, sr.Blob, sr.Shard)
		}
	case "providers":
		if len(args) != 0 {
			usage()
		}
		pr, err := c.Providers()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("epoch: %d\n", pr.Epoch)
		fmt.Printf("%-6s %-9s %8s %14s %14s %14s %10s %s\n", "node", "health", "pages", "resident", "dirty", "stored", "recovered", "backend")
		for _, p := range pr.Providers {
			backend := p.Backend
			if backend == "" {
				backend = "(ram)"
			}
			fmt.Printf("%-6d %-9s %8d %14d %14d %14d %10d %s\n", p.Node, p.Health, p.Entries, p.Resident, p.Dirty, p.Stored, p.Recovered, backend)
		}
	case "tenants":
		if len(args) != 0 {
			usage()
		}
		tr, err := c.Tenants()
		if err != nil {
			fatal(err)
		}
		if !tr.Enabled {
			fmt.Println("admission: disabled (start bsfsd with -tenant-rate)")
			return
		}
		fmt.Printf("admission: %.1f ops/s per tenant, burst %.1f\n", tr.Rate, tr.Burst)
		fmt.Printf("%-20s %10s %10s %9s\n", "tenant", "admitted", "rejected", "inflight")
		for _, t := range tr.Tenants {
			fmt.Printf("%-20s %10d %10d %9d\n", t.Tenant, t.Admitted, t.Rejected, t.Inflight)
		}
	case "join", "drain", "leave":
		var node uint64
		switch {
		case len(args) == 0 && cmd == "join":
			// auto-allocate
		case len(args) == 1:
			if _, err := fmt.Sscanf(args[0], "%d", &node); err != nil || (node == 0 && cmd != "join") {
				usage()
			}
		default:
			usage()
		}
		var nr rpcnet.NodeReply
		var err error
		switch cmd {
		case "join":
			nr, err = c.Join(node)
		case "drain":
			nr, err = c.Drain(node)
		case "leave":
			nr, err = c.Leave(node)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("node:  %d\nepoch: %d\n", nr.Node, nr.Epoch)
	case "mkdir":
		if len(args) != 1 {
			usage()
		}
		if err := c.Mkdir(args[0]); err != nil {
			fatal(err)
		}
	case "mv":
		if len(args) != 2 {
			usage()
		}
		if err := c.Rename(args[0], args[1]); err != nil {
			fatal(err)
		}
	case "rm":
		if len(args) != 1 {
			usage()
		}
		if err := c.Delete(args[0]); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "blobctl: %v\n", err)
	os.Exit(1)
}
