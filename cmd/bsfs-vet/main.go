// Command bsfs-vet enforces the project's simulation invariants over
// Go packages: all time through cluster.Env (walltime), all
// concurrency through Env.Go/Daemon/WaitGroup (nakedgo), errors.Is
// instead of sentinel identity (sentinelcmp), end-to-end Ctx
// forwarding (ctxflow), and no blocking environment call under a held
// mutex (lockedblock). See internal/analysis for the invariants and
// the suppression syntax.
//
// Usage:
//
//	bsfs-vet [-rules walltime,nakedgo,...] [packages]
//
// Packages default to ./... . The exit status is 1 if any finding
// survives policy and suppressions, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bsfs-vet [-rules r1,r2] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	as, err := analysis.ByName(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsfs-vet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.NewLoader().Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsfs-vet:", err)
		os.Exit(2)
	}

	findings := analysis.Check(pkgs, as)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bsfs-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
