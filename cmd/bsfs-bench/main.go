// Command bsfs-bench regenerates the paper's microbenchmark figures
// (E1-E3), the extensions (X1 concurrent appends, X2 shared-blob
// publish throughput, X3 provider failure/churn with replica repair,
// X5 sharded version-manager scaling, X6 membership churn, X7 tiered
// storage recovery over durable backends) and the ablation studies
// (A1-A7, including A5's serial-vs-parallel client data path, A6's
// version-manager group commit on/off, and A7's sharded-vs-centralized
// version management) on a simulated Grid'5000-style cluster.
//
// Usage:
//
//	bsfs-bench                          # run everything at paper scale
//	bsfs-bench -exp e3                  # one experiment
//	bsfs-bench -clients 1,50,250        # custom sweep
//	bsfs-bench -size 256 -nodes 90      # reduced scale (MB per client)
//	bsfs-bench -replicas 3              # replicated deployments
//	bsfs-bench -csv                     # machine-readable output
//	bsfs-bench -json results.json       # record results (name, params, metrics)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: e1 e2 e3 x1 x2 x3 x5 x6 x7 a1 a2 a3 a4 a5 a6 a7, or 'all'")
		clients  = flag.String("clients", "1,20,50,100,150,200,250", "comma-separated client counts")
		sizeMB   = flag.Int64("size", 1024, "data per client in MB (paper: 1024)")
		nodes    = flag.Int("nodes", 270, "cluster size (paper: 270)")
		cacheMB  = flag.Int64("cache", 512, "storage-node RAM cache in MB")
		replicas = flag.Int("replicas", 1, "data replication factor for both systems")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonPath = flag.String("json", "", "also write results (name, params, metrics) as JSON to this path")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var counts []int
	for _, part := range strings.Split(*clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bsfs-bench: bad client count %q\n", part)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	for _, n := range counts {
		if n > *nodes-1 {
			fmt.Fprintf(os.Stderr, "bsfs-bench: %d clients exceed %d storage nodes\n", n, *nodes-1)
			os.Exit(2)
		}
	}

	opts := bench.SweepOpts{
		Clients:        counts,
		BytesPerClient: *sizeMB * bench.MB,
		Spec:           bench.ClusterSpec{Nodes: *nodes},
		MemCapacity:    *cacheMB * bench.MB,
		Replication:    *replicas,
	}

	out := os.Stdout
	if *csv {
		// CSV mode wraps every experiment's points; simplest is to run
		// the sweeps directly for the three core experiments.
		runCSV(opts)
		return
	}

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.Experiments
	} else {
		e, ok := bench.FindExperiment(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "bsfs-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		todo = []bench.Experiment{e}
	}

	var results []bench.ExperimentResult
	for _, e := range todo {
		fmt.Printf("\n--- %s ---\n", e.Title)
		rec := &bench.Recorder{Writer: out}
		if err := e.Run(opts, rec); err != nil {
			fmt.Fprintf(os.Stderr, "bsfs-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		results = append(results, bench.NewExperimentResult(e, rec))
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err == nil {
			err = bench.WriteResultsJSON(f, opts, results)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsfs-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
}

// runCSV emits E1-E3 sweep data for plotting.
func runCSV(opts bench.SweepOpts) {
	var all []bench.Point
	type runner struct {
		name string
		fn   func(bench.MicroOpts) (bench.Point, error)
	}
	for _, r := range []runner{
		{"e1", bench.RunReadDistinct},
		{"e2", bench.RunReadShared},
		{"e3", bench.RunWriteDistinct},
	} {
		for _, kind := range []string{"bsfs", "hdfs"} {
			for _, n := range opts.Clients {
				p, err := r.fn(bench.MicroOpts{
					Clients:        n,
					BytesPerClient: opts.BytesPerClient,
					Spec:           opts.Spec,
					Storage: bench.StorageOpts{
						Kind:        kind,
						MemCapacity: opts.MemCapacity,
						Replication: opts.Replication,
					},
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "bsfs-bench: %s/%s/%d: %v\n", r.name, kind, n, err)
					os.Exit(1)
				}
				all = append(all, p)
			}
		}
	}
	bench.WritePointsCSV(os.Stdout, all)
}
